package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"energysched/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixBasics(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %v", m.At(2, 1))
	}
	m.Set(0, 0, 9)
	if m.At(0, 0) != 9 {
		t.Fatal("Set failed")
	}
	tr := m.Transpose()
	if tr.Rows != 2 || tr.Cols != 3 || tr.At(1, 2) != 6 {
		t.Fatal("Transpose wrong")
	}
	c := m.Clone()
	c.Set(0, 0, -1)
	if m.At(0, 0) != 9 {
		t.Fatal("Clone aliases data")
	}
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	y := m.MulVec([]float64{1, 1, 1})
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec = %v", y)
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestSolveSquareKnown(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := SolveSquare(a.Clone(), []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 1, 1e-10) || !almostEqual(x[1], 3, 1e-10) {
		t.Fatalf("x = %v, want [1 3]", x)
	}
}

func TestSolveSquareNeedsPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := SolveSquare(a.Clone(), []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 3, 1e-12) || !almostEqual(x[1], 2, 1e-12) {
		t.Fatalf("x = %v, want [3 2]", x)
	}
}

func TestSolveSquareSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveSquare(a, []float64{1, 2}); err == nil {
		t.Fatal("singular system did not error")
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Consistent overdetermined system: solution recovers exactly.
	a := FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	want := []float64{2, -1}
	b := a.MulVec(want)
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !almostEqual(x[i], want[i], 1e-10) {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestLeastSquaresRegression(t *testing.T) {
	// Fit y = 2x + 1 to noisy-free points: columns [x, 1].
	a := FromRows([][]float64{{0, 1}, {1, 1}, {2, 1}, {3, 1}})
	b := []float64{1, 3, 5, 7}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 2, 1e-10) || !almostEqual(x[1], 1, 1e-10) {
		t.Fatalf("fit = %v, want [2 1]", x)
	}
}

func TestLeastSquaresUnderdetermined(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}})
	if _, err := LeastSquares(a, []float64{1}); err == nil {
		t.Fatal("underdetermined system did not error")
	}
}

func TestLeastSquaresRankDeficient(t *testing.T) {
	a := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	if _, err := LeastSquares(a, []float64{1, 2, 3}); err == nil {
		t.Fatal("rank-deficient system did not error")
	}
}

func TestNormalEquationsAgreeWithQR(t *testing.T) {
	src := rng.New(1234)
	for trial := 0; trial < 20; trial++ {
		rows, cols := 12+src.Intn(8), 2+src.Intn(4)
		a := NewMatrix(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				a.Set(i, j, src.NormFloat64())
			}
		}
		b := make([]float64, rows)
		for i := range b {
			b[i] = src.NormFloat64()
		}
		x1, err1 := LeastSquares(a, b)
		x2, err2 := LeastSquaresNormal(a, b)
		if err1 != nil || err2 != nil {
			t.Fatalf("solvers errored: %v %v", err1, err2)
		}
		for j := range x1 {
			if !almostEqual(x1[j], x2[j], 1e-6) {
				t.Fatalf("trial %d: QR %v vs normal %v", trial, x1, x2)
			}
		}
	}
}

// Property: the least-squares residual is never larger than the residual
// of nearby perturbed candidates (local optimality check).
func TestQuickLeastSquaresOptimal(t *testing.T) {
	src := rng.New(99)
	f := func(seed uint64) bool {
		r := rng.New(seed)
		rows, cols := 10, 3
		a := NewMatrix(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				a.Set(i, j, r.NormFloat64())
			}
		}
		b := make([]float64, rows)
		for i := range b {
			b[i] = r.NormFloat64() * 5
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			return true // degenerate draw; skip
		}
		base := Residual(a, x, b)
		for trial := 0; trial < 10; trial++ {
			pert := make([]float64, cols)
			copy(pert, x)
			pert[src.Intn(cols)] += (src.Float64() - 0.5) * 0.1
			if Residual(a, pert, b) < base-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: SolveSquare then multiply returns the original RHS.
func TestQuickSolveRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + int(seed%5)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, r.NormFloat64())
			}
			a.Set(i, i, a.At(i, i)+float64(n)) // diagonally dominant => well-conditioned
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = r.NormFloat64() * 3
		}
		b := a.MulVec(want)
		x, err := SolveSquare(a.Clone(), b)
		if err != nil {
			return false
		}
		for i := range x {
			if !almostEqual(x[i], want[i], 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
