// Package linalg provides the small dense linear-algebra kernel the
// energy-weight calibration needs (§3.2 of the paper: "The weights aᵢ are
// calibrated by measuring the real energy consumption with a multimeter
// for several test applications, counting the events that occur during
// the test runs, and solving the resulting linear equations").
//
// Calibration produces an overdetermined system A·w = e (one row per
// measurement window, one column per event class, e the measured
// energies); we solve it in the least-squares sense. Two solvers are
// provided: Householder QR (the default, numerically robust) and normal
// equations via Gaussian elimination with partial pivoting (simpler,
// used to cross-check the QR path in tests).
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	data       []float64
}

// NewMatrix allocates a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must all have equal
// length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("linalg: FromRows needs at least one non-empty row")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("linalg: ragged row %d: %d vs %d", i, len(r), m.Cols))
		}
		copy(m.data[i*m.Cols:], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.data, m.data)
	return c
}

// MulVec returns m·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec shape mismatch %d vs %d", len(x), m.Cols))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.data[i*out.Cols+j] += a * b.At(k, j)
			}
		}
	}
	return out
}

// ErrSingular is returned when a system has no unique solution at
// working precision.
var ErrSingular = errors.New("linalg: matrix is singular or ill-conditioned")

// SolveSquare solves the square system a·x = b in place using Gaussian
// elimination with partial pivoting. a and b are clobbered.
func SolveSquare(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		panic("linalg: SolveSquare needs a square system")
	}
	for col := 0; col < n; col++ {
		// Partial pivot: largest |a[r][col]| for r >= col.
		pivot := col
		pmax := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > pmax {
				pivot, pmax = r, v
			}
		}
		if pmax < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				tmp := a.At(col, j)
				a.Set(col, j, a.At(pivot, j))
				a.Set(pivot, j, tmp)
			}
			b[col], b[pivot] = b[pivot], b[col]
		}
		inv := 1 / a.At(col, col)
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				a.Set(r, j, a.At(r, j)-f*a.At(col, j))
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= a.At(i, j) * x[j]
		}
		x[i] = s / a.At(i, i)
	}
	return x, nil
}

// LeastSquaresNormal solves min‖a·x − b‖₂ via the normal equations
// aᵀa·x = aᵀb. Fast but squares the condition number; retained as a
// cross-check for the QR solver.
func LeastSquaresNormal(a *Matrix, b []float64) ([]float64, error) {
	if len(b) != a.Rows {
		panic("linalg: rhs length mismatch")
	}
	at := a.Transpose()
	ata := at.Mul(a)
	atb := at.MulVec(b)
	return SolveSquare(ata, atb)
}

// LeastSquares solves min‖a·x − b‖₂ using Householder QR factorization.
// It requires a.Rows >= a.Cols and full column rank.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	if len(b) != a.Rows {
		panic("linalg: rhs length mismatch")
	}
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, fmt.Errorf("linalg: underdetermined system %dx%d", m, n)
	}
	r := a.Clone()
	y := make([]float64, m)
	copy(y, b)

	// Householder QR: for each column, reflect so the subdiagonal
	// vanishes; apply the same reflection to the RHS.
	v := make([]float64, m)
	for k := 0; k < n; k++ {
		// Build the Householder vector for column k, rows k..m-1.
		norm := 0.0
		for i := k; i < m; i++ {
			norm += r.At(i, k) * r.At(i, k)
		}
		norm = math.Sqrt(norm)
		if norm < 1e-12 {
			return nil, ErrSingular
		}
		alpha := -norm
		if r.At(k, k) < 0 {
			alpha = norm
		}
		vnorm2 := 0.0
		for i := k; i < m; i++ {
			v[i] = r.At(i, k)
			if i == k {
				v[i] -= alpha
			}
			vnorm2 += v[i] * v[i]
		}
		if vnorm2 < 1e-24 {
			continue // column already reduced
		}
		// Apply H = I − 2vvᵀ/‖v‖² to R's remaining columns and to y.
		for j := k; j < n; j++ {
			dot := 0.0
			for i := k; i < m; i++ {
				dot += v[i] * r.At(i, j)
			}
			f := 2 * dot / vnorm2
			for i := k; i < m; i++ {
				r.Set(i, j, r.At(i, j)-f*v[i])
			}
		}
		dot := 0.0
		for i := k; i < m; i++ {
			dot += v[i] * y[i]
		}
		f := 2 * dot / vnorm2
		for i := k; i < m; i++ {
			y[i] -= f * v[i]
		}
	}

	// Back-substitute R·x = y[:n].
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= r.At(i, j) * x[j]
		}
		d := r.At(i, i)
		if math.Abs(d) < 1e-12 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// Residual returns ‖a·x − b‖₂.
func Residual(a *Matrix, x, b []float64) float64 {
	y := a.MulVec(x)
	s := 0.0
	for i := range y {
		d := y[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
