package energysched

import (
	"energysched/internal/energy"
	"energysched/internal/machine"
	"energysched/internal/workload"
)

// Checkpoint serializes the system's complete simulation state —
// tasks, runqueues, thermal nodes, throttles, DVFS ladders, RNGs,
// accumulated statistics — into a self-contained, versioned byte
// image. A machine restored from the image continues bit-exactly: the
// remaining event trace, every statistic, and every later checkpoint
// are byte-identical to the original running on uninterrupted.
// Identical states always encode to identical bytes, so images can be
// cached and compared by content (the esfarmd daemon does both).
func (s *System) Checkpoint() ([]byte, error) { return s.m.Checkpoint() }

// Restore rebuilds a System from a Checkpoint image. rec, when
// non-nil, records the restored run's scheduler events (the original
// recorder's history is not part of the image). It fails on images
// from an incompatible checkpoint version.
func Restore(data []byte, rec *TraceRecorder) (*System, error) {
	m, err := machine.Restore(data, rec)
	if err != nil {
		return nil, err
	}
	return &System{m: m, catalog: workload.NewCatalog(energy.DefaultTrueModel())}, nil
}

// Branch forks an in-memory copy of the system sharing no mutable
// state with its parent: the copy and the parent continue bit-exactly
// identically until one of them is Reseeded or run. Branching a warmed
// system once per seed is how sweeps skip re-simulating the warm-up
// (see RunConfig and cmd/esfarmd). rec is the branch's trace recorder
// (nil for none).
func (s *System) Branch(rec *TraceRecorder) (*System, error) {
	m, err := s.m.Branch(rec)
	if err != nil {
		return nil, err
	}
	return &System{m: m, catalog: s.catalog}, nil
}

// Reseed re-randomizes the system's future without touching its
// present: all random streams (scheduler noise, workload phase
// wanderings, fault injection) are folded with seed, so branches
// reseeded differently diverge while branches sharing a seed stay
// bit-exact. Deterministic: reseeding equal states with equal seeds
// yields equal states.
func (s *System) Reseed(seed uint64) { s.m.Reseed(seed) }
