package energysched

import (
	"energysched/internal/experiments"
)

// Re-exported experiment result types.
type (
	// Table1Row is one program's successive-timeslice power change.
	Table1Row = experiments.Table1Row
	// Table2Row is one program's measured power.
	Table2Row = experiments.Table2Row
	// Table3Result is the §6.2 throttling/throughput comparison.
	Table3Result = experiments.Table3Result
	// Figure3Result holds the temperature/power/thermal-power curves.
	Figure3Result = experiments.Figure3Result
	// ThermalTraceResult holds the Fig. 6/7 per-CPU curves.
	ThermalTraceResult = experiments.ThermalTraceResult
	// Figure8Point is one workload-mix throughput gain.
	Figure8Point = experiments.Figure8Point
	// Figure9Result is the single-hot-task migration trace.
	Figure9Result = experiments.Figure9Result
	// Figure10Point is one task-count throughput gain.
	Figure10Point = experiments.Figure10Point
	// HotTaskSpeedupResult is the §6.4 execution-time comparison.
	HotTaskSpeedupResult = experiments.HotTaskSpeedupResult
	// MigrationCountsResult is the §6.1 migration accounting.
	MigrationCountsResult = experiments.MigrationCountsResult
	// CMPResult is the §7 chip-multiprocessor extension experiment.
	CMPResult = experiments.CMPResult
	// AblationResult is one §4.3 balancer-metric ablation row.
	AblationResult = experiments.AblationResult
	// PolicyComparisonResult compares CPU/task throttling vs migration.
	PolicyComparisonResult = experiments.PolicyComparisonResult
	// UnitAwareResult is the §7 functional-unit extension experiment.
	UnitAwareResult = experiments.UnitAwareResult
	// DVFSComparisonResult tabulates DVFS governors against hlt
	// throttling as thermal-limit enforcement knobs.
	DVFSComparisonResult = experiments.DVFSComparisonResult

	// RunConfig carries the execution knobs of a reproduction run —
	// simulation engine, worker-pool size, parallel-engine shard count.
	// Results never depend on it: every experiment is byte-identical
	// for every RunConfig (the cross-engine equivalence tests enforce
	// the engine half, the deterministic worker pool the jobs half).
	RunConfig = experiments.RunConfig
)

// A Reproducer regenerates the paper's tables and figures under an
// explicit RunConfig. The zero value (batched engine, GOMAXPROCS
// workers) is ready to use:
//
//	var r energysched.Reproducer
//	rows := r.Table1(7, 300)
type Reproducer struct {
	// RC is the execution configuration shared by every experiment the
	// Reproducer runs.
	RC RunConfig
}

// Table1 regenerates Table 1 (per-timeslice power change).
func (r Reproducer) Table1(seed uint64, slices int) []Table1Row {
	return experiments.Table1(seed, slices)
}

// Table2 regenerates Table 2 (program powers) from a solo run of runMS
// milliseconds per program. It returns an error when the §3.2
// energy-weight calibration the table depends on fails.
func (r Reproducer) Table2(seed uint64, runMS int) ([]Table2Row, error) {
	return experiments.Table2(seed, runMS)
}

// Table3 regenerates Table 3 (CPU throttling percentages and the §6.2
// throughput gain) with the default configuration. It returns an error
// when the §3.2 calibration fails.
func (r Reproducer) Table3(seed uint64) (Table3Result, error) {
	cfg := experiments.DefaultTable3Config()
	cfg.Seed = seed
	return r.RC.Table3(cfg)
}

// Figure3 regenerates the Fig. 3 temperature/power/thermal-power
// relationship.
func (r Reproducer) Figure3() Figure3Result { return experiments.Figure3() }

// Figure6 regenerates Fig. 6 (thermal power of the eight CPUs, energy
// balancing disabled); Figure7 the enabled counterpart.
func (r Reproducer) Figure6(seed uint64) ThermalTraceResult {
	cfg := experiments.DefaultThermalTraceConfig(false)
	cfg.Seed = seed
	return r.RC.ThermalTrace(cfg)
}

// Figure7 regenerates Fig. 7 (energy balancing enabled).
func (r Reproducer) Figure7(seed uint64) ThermalTraceResult {
	cfg := experiments.DefaultThermalTraceConfig(true)
	cfg.Seed = seed
	return r.RC.ThermalTrace(cfg)
}

// Figure8 regenerates the Fig. 8 workload-homogeneity sweep. It
// returns an error when one of the parallel runs fails (a recovered
// worker panic, surfaced on its owning sweep slot).
func (r Reproducer) Figure8(seed uint64) ([]Figure8Point, error) {
	cfg := experiments.DefaultFigure8Config()
	cfg.Seed = seed
	return r.RC.Figure8(cfg)
}

// Figure9 regenerates the Fig. 9 hot-task migration trace over
// durationMS milliseconds.
func (r Reproducer) Figure9(seed uint64, durationMS int64) Figure9Result {
	return r.RC.Figure9(seed, durationMS)
}

// Figure10 regenerates the Fig. 10 multi-task sweep. It returns an
// error when one of the parallel runs fails.
func (r Reproducer) Figure10(seed uint64) ([]Figure10Point, error) {
	cfg := experiments.DefaultFigure10Config()
	cfg.Seed = seed
	return r.RC.Figure10(cfg)
}

// HotTaskSpeedup regenerates the §6.4 execution-time numbers for a
// package budget.
func (r Reproducer) HotTaskSpeedup(seed uint64, budgetW float64) HotTaskSpeedupResult {
	return r.RC.HotTaskSpeedup(seed, budgetW, 60_000)
}

// MigrationCounts regenerates the §6.1 migration counts over
// durationMS milliseconds per run (the paper uses 15 minutes). It
// returns an error when one of the parallel runs fails.
func (r Reproducer) MigrationCounts(seed uint64, durationMS int64) (MigrationCountsResult, error) {
	return r.RC.MigrationCounts(seed, durationMS)
}

// CMP runs the §7 chip-multiprocessor extension: hot task migration
// with the additional "mc" domain level on a machine of dual-core
// packages.
func (r Reproducer) CMP(seed uint64, durationMS int64) CMPResult {
	return r.RC.CMPHotTask(seed, durationMS)
}

// Ablations runs the §4.3 balancer-metric ablation.
func (r Reproducer) Ablations(seed uint64, durationMS int64) []AblationResult {
	return r.RC.AblationBalancerMetrics(seed, durationMS)
}

// PolicyComparison quantifies §2.3: CPU throttling vs hot-task
// throttling vs energy-aware scheduling.
func (r Reproducer) PolicyComparison(seed uint64, measureMS int64) PolicyComparisonResult {
	return r.RC.PolicyComparison(seed, measureMS)
}

// UnitAware runs the §7 functional-unit extension experiment.
func (r Reproducer) UnitAware(seed uint64, measureMS int64) UnitAwareResult {
	return r.RC.UnitAware(seed, measureMS)
}

// DVFSComparison runs the enforcement comparison the paper could not:
// DVFS governors vs §6.2 hlt throttling on the hot-task scenario —
// energy, makespan, peak temperature, and the halted vs downclocked
// fractions.
func (r Reproducer) DVFSComparison(seed uint64) DVFSComparisonResult {
	cfg := experiments.DefaultDVFSComparisonConfig()
	cfg.Seed = seed
	return r.RC.DVFSvsThrottle(cfg)
}

// legacyReproducer snapshots the deprecated SetParallelism state for
// the package-level Reproduce* wrappers.
func legacyReproducer() Reproducer { return Reproducer{RC: experiments.LegacyRunConfig()} }

// SetParallelism bounds the worker pool the package-level Reproduce*
// sweeps use for their independent runs: 0 restores the default
// (GOMAXPROCS), 1 forces sequential execution. Results are
// byte-identical for every worker count.
//
// Deprecated: set RunConfig.Jobs on a Reproducer instead of mutating
// package state.
func SetParallelism(jobs int) { experiments.Jobs = jobs }

// ReproduceTable1 regenerates Table 1 (per-timeslice power change).
//
// Deprecated: use Reproducer.Table1.
func ReproduceTable1(seed uint64, slices int) []Table1Row {
	return legacyReproducer().Table1(seed, slices)
}

// ReproduceTable2 regenerates Table 2 (program powers).
//
// Deprecated: use Reproducer.Table2.
func ReproduceTable2(seed uint64, runMS int) ([]Table2Row, error) {
	return legacyReproducer().Table2(seed, runMS)
}

// ReproduceTable3 regenerates Table 3.
//
// Deprecated: use Reproducer.Table3.
func ReproduceTable3(seed uint64) (Table3Result, error) {
	return legacyReproducer().Table3(seed)
}

// ReproduceFigure3 regenerates Fig. 3.
//
// Deprecated: use Reproducer.Figure3.
func ReproduceFigure3() Figure3Result { return legacyReproducer().Figure3() }

// ReproduceFigure6 regenerates Fig. 6.
//
// Deprecated: use Reproducer.Figure6.
func ReproduceFigure6(seed uint64) ThermalTraceResult { return legacyReproducer().Figure6(seed) }

// ReproduceFigure7 regenerates Fig. 7.
//
// Deprecated: use Reproducer.Figure7.
func ReproduceFigure7(seed uint64) ThermalTraceResult { return legacyReproducer().Figure7(seed) }

// ReproduceFigure8 regenerates the Fig. 8 sweep.
//
// Deprecated: use Reproducer.Figure8.
func ReproduceFigure8(seed uint64) ([]Figure8Point, error) { return legacyReproducer().Figure8(seed) }

// ReproduceFigure9 regenerates the Fig. 9 trace.
//
// Deprecated: use Reproducer.Figure9.
func ReproduceFigure9(seed uint64, durationMS int64) Figure9Result {
	return legacyReproducer().Figure9(seed, durationMS)
}

// ReproduceFigure10 regenerates the Fig. 10 sweep.
//
// Deprecated: use Reproducer.Figure10.
func ReproduceFigure10(seed uint64) ([]Figure10Point, error) {
	return legacyReproducer().Figure10(seed)
}

// ReproduceHotTaskSpeedup regenerates the §6.4 execution-time numbers.
//
// Deprecated: use Reproducer.HotTaskSpeedup.
func ReproduceHotTaskSpeedup(seed uint64, budgetW float64) HotTaskSpeedupResult {
	return legacyReproducer().HotTaskSpeedup(seed, budgetW)
}

// ReproduceMigrationCounts regenerates the §6.1 migration counts.
//
// Deprecated: use Reproducer.MigrationCounts.
func ReproduceMigrationCounts(seed uint64, durationMS int64) (MigrationCountsResult, error) {
	return legacyReproducer().MigrationCounts(seed, durationMS)
}

// ReproduceCMP runs the §7 chip-multiprocessor extension.
//
// Deprecated: use Reproducer.CMP.
func ReproduceCMP(seed uint64, durationMS int64) CMPResult {
	return legacyReproducer().CMP(seed, durationMS)
}

// ReproduceAblations runs the §4.3 balancer-metric ablation.
//
// Deprecated: use Reproducer.Ablations.
func ReproduceAblations(seed uint64, durationMS int64) []AblationResult {
	return legacyReproducer().Ablations(seed, durationMS)
}

// ReproducePolicyComparison quantifies §2.3.
//
// Deprecated: use Reproducer.PolicyComparison.
func ReproducePolicyComparison(seed uint64, measureMS int64) PolicyComparisonResult {
	return legacyReproducer().PolicyComparison(seed, measureMS)
}

// ReproduceUnitAware runs the §7 functional-unit extension experiment.
//
// Deprecated: use Reproducer.UnitAware.
func ReproduceUnitAware(seed uint64, measureMS int64) UnitAwareResult {
	return legacyReproducer().UnitAware(seed, measureMS)
}

// ReproduceDVFSComparison runs the DVFS-vs-throttling comparison.
//
// Deprecated: use Reproducer.DVFSComparison.
func ReproduceDVFSComparison(seed uint64) DVFSComparisonResult {
	return legacyReproducer().DVFSComparison(seed)
}
