package energysched

import (
	"energysched/internal/experiments"
)

// Re-exported experiment result types.
type (
	// Table1Row is one program's successive-timeslice power change.
	Table1Row = experiments.Table1Row
	// Table2Row is one program's measured power.
	Table2Row = experiments.Table2Row
	// Table3Result is the §6.2 throttling/throughput comparison.
	Table3Result = experiments.Table3Result
	// Figure3Result holds the temperature/power/thermal-power curves.
	Figure3Result = experiments.Figure3Result
	// ThermalTraceResult holds the Fig. 6/7 per-CPU curves.
	ThermalTraceResult = experiments.ThermalTraceResult
	// Figure8Point is one workload-mix throughput gain.
	Figure8Point = experiments.Figure8Point
	// Figure9Result is the single-hot-task migration trace.
	Figure9Result = experiments.Figure9Result
	// Figure10Point is one task-count throughput gain.
	Figure10Point = experiments.Figure10Point
	// HotTaskSpeedupResult is the §6.4 execution-time comparison.
	HotTaskSpeedupResult = experiments.HotTaskSpeedupResult
	// MigrationCountsResult is the §6.1 migration accounting.
	MigrationCountsResult = experiments.MigrationCountsResult
	// CMPResult is the §7 chip-multiprocessor extension experiment.
	CMPResult = experiments.CMPResult
	// AblationResult is one §4.3 balancer-metric ablation row.
	AblationResult = experiments.AblationResult
	// PolicyComparisonResult compares CPU/task throttling vs migration.
	PolicyComparisonResult = experiments.PolicyComparisonResult
	// UnitAwareResult is the §7 functional-unit extension experiment.
	UnitAwareResult = experiments.UnitAwareResult
	// DVFSComparisonResult tabulates DVFS governors against hlt
	// throttling as thermal-limit enforcement knobs.
	DVFSComparisonResult = experiments.DVFSComparisonResult
)

// SetParallelism bounds the worker pool the sweep experiments (Figs. 8
// and 10, the §6.1 migration grid, the sensitivity sweeps) use for
// their independent runs: 0 restores the default (GOMAXPROCS), 1
// forces sequential execution. Every run is seeded deterministically
// from its sweep index and aggregated in order, so results are
// byte-identical for every worker count — the knob only trades wall
// clock for host cores.
func SetParallelism(jobs int) { experiments.Jobs = jobs }

// ReproduceTable1 regenerates Table 1 (per-timeslice power change).
func ReproduceTable1(seed uint64, slices int) []Table1Row {
	return experiments.Table1(seed, slices)
}

// ReproduceTable2 regenerates Table 2 (program powers) from a solo run
// of runMS milliseconds per program. It returns an error when the §3.2
// energy-weight calibration the table depends on fails.
func ReproduceTable2(seed uint64, runMS int) ([]Table2Row, error) {
	return experiments.Table2(seed, runMS)
}

// ReproduceTable3 regenerates Table 3 (CPU throttling percentages and
// the §6.2 throughput gain) with the default configuration. It returns
// an error when the §3.2 calibration fails.
func ReproduceTable3(seed uint64) (Table3Result, error) {
	cfg := experiments.DefaultTable3Config()
	cfg.Seed = seed
	return experiments.Table3(cfg)
}

// ReproduceFigure3 regenerates the Fig. 3 temperature/power/thermal-
// power relationship.
func ReproduceFigure3() Figure3Result { return experiments.Figure3() }

// ReproduceFigure6 regenerates Fig. 6 (thermal power of the eight CPUs,
// energy balancing disabled); ReproduceFigure7 the enabled counterpart.
func ReproduceFigure6(seed uint64) ThermalTraceResult {
	cfg := experiments.DefaultThermalTraceConfig(false)
	cfg.Seed = seed
	return experiments.ThermalTrace(cfg)
}

// ReproduceFigure7 regenerates Fig. 7 (energy balancing enabled).
func ReproduceFigure7(seed uint64) ThermalTraceResult {
	cfg := experiments.DefaultThermalTraceConfig(true)
	cfg.Seed = seed
	return experiments.ThermalTrace(cfg)
}

// ReproduceFigure8 regenerates the Fig. 8 workload-homogeneity sweep.
// It returns an error when one of the parallel runs fails (a recovered
// worker panic, surfaced on its owning sweep slot).
func ReproduceFigure8(seed uint64) ([]Figure8Point, error) {
	cfg := experiments.DefaultFigure8Config()
	cfg.Seed = seed
	return experiments.Figure8(cfg)
}

// ReproduceFigure9 regenerates the Fig. 9 hot-task migration trace over
// durationMS milliseconds.
func ReproduceFigure9(seed uint64, durationMS int64) Figure9Result {
	return experiments.Figure9(seed, durationMS)
}

// ReproduceFigure10 regenerates the Fig. 10 multi-task sweep. It
// returns an error when one of the parallel runs fails.
func ReproduceFigure10(seed uint64) ([]Figure10Point, error) {
	cfg := experiments.DefaultFigure10Config()
	cfg.Seed = seed
	return experiments.Figure10(cfg)
}

// ReproduceHotTaskSpeedup regenerates the §6.4 execution-time numbers
// for a package budget.
func ReproduceHotTaskSpeedup(seed uint64, budgetW float64) HotTaskSpeedupResult {
	return experiments.HotTaskSpeedup(seed, budgetW, 60_000)
}

// ReproduceMigrationCounts regenerates the §6.1 migration counts over
// durationMS milliseconds per run (the paper uses 15 minutes). It
// returns an error when one of the parallel runs fails.
func ReproduceMigrationCounts(seed uint64, durationMS int64) (MigrationCountsResult, error) {
	return experiments.MigrationCounts(seed, durationMS)
}

// ReproduceCMP runs the §7 chip-multiprocessor extension: hot task
// migration with the additional "mc" domain level on a machine of
// dual-core packages.
func ReproduceCMP(seed uint64, durationMS int64) CMPResult {
	return experiments.CMPHotTask(seed, durationMS)
}

// ReproduceAblations runs the §4.3 balancer-metric ablation.
func ReproduceAblations(seed uint64, durationMS int64) []AblationResult {
	return experiments.AblationBalancerMetrics(seed, durationMS)
}

// ReproducePolicyComparison quantifies §2.3: CPU throttling vs hot-task
// throttling vs energy-aware scheduling.
func ReproducePolicyComparison(seed uint64, measureMS int64) PolicyComparisonResult {
	return experiments.PolicyComparison(seed, measureMS)
}

// ReproduceUnitAware runs the §7 functional-unit extension experiment.
func ReproduceUnitAware(seed uint64, measureMS int64) UnitAwareResult {
	return experiments.UnitAware(seed, measureMS)
}

// ReproduceDVFSComparison runs the enforcement comparison the paper
// could not: DVFS governors vs §6.2 hlt throttling on the hot-task
// scenario — energy, makespan, peak temperature, and the halted vs
// downclocked fractions.
func ReproduceDVFSComparison(seed uint64) DVFSComparisonResult {
	cfg := experiments.DefaultDVFSComparisonConfig()
	cfg.Seed = seed
	return experiments.DVFSvsThrottle(cfg)
}
